// Package tcp implements transport.Transport over real TCP sockets, so
// the collectives of the concurrent execution engine run unchanged across
// processes and machines.
//
// # Topology
//
// A fabric spans n ranks; Config.Addrs[r] is rank r's listen address.
// Every directed (sender, receiver) pair maps onto one full-duplex TCP
// connection per unordered pair {i, j}: the connection carries i→j
// traffic one way and j→i traffic the other. One process may host any
// subset of the ranks (Config.LocalRanks); a fabric hosting a single rank
// is the cmd/marsit-node shape, a fabric hosting all ranks is the
// in-process shape used by tests and the `-transport tcp` engines.
//
// # Rendezvous
//
// All ranks listen; for the pair {i, j} with i < j, rank i dials rank
// j's address (deterministic dial direction, so exactly one connection
// exists per pair and no tie-breaking is needed). Dialers retry until
// DialTimeout, tolerating peers that start late. Each connection opens
// with a hello exchange
//
//	dialer → "MTP" | version byte | uint32 dialer rank | uint32 target rank
//	target → "MTP" | version byte | uint32 target rank | uint32 dialer rank
//
// (all integers little-endian) which pins the pair to the connection and
// rejects protocol or wiring mismatches before any payload flows. The
// version byte negotiates the frame format: both ends must speak
// FrameVersion, and a mismatch fails the rendezvous with a loud "frame
// version" error naming both versions — a mixed-version fleet dies in
// the handshake instead of misparsing the extended header below.
//
// # Frames
//
// After the hello, each direction is a stream of length-prefixed frames
// (format version '2'):
//
//	uint32 payload length | uint32 Wire | float64 Clock (IEEE-754 bits) | uint32 Job | payload
//
// Wire, Clock and Job are the Packet fields of the simulated cost model
// and the job-scoped fabric layer (transport/jobmux); the 20-byte frame
// header itself is never charged to the simulation. A
// dedicated writer goroutine per (local rank, peer) drains a bounded send
// queue onto the socket and a dedicated reader goroutine parses frames
// into a bounded receive queue, so per-pair FIFO follows from TCP's own
// ordering plus single-reader/single-writer queues.
//
// Close tears down every socket; blocked Sends and Recvs return
// transport.ErrClosed, while packets already parsed into a receive queue
// stay drainable, matching the Loopback semantics. An unexpected peer
// failure (connection reset, EOF mid-run) poisons the whole fabric the
// same way, so a collective blocked on a dead peer fails fast instead of
// hanging.
package tcp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"marsit/internal/obs"
	"marsit/internal/transport"
)

// logger is the package's optional structured logger. The fabric has no
// construction-time configuration hook in CLIs that only pass addresses,
// so verbosity is process-global: marsit-node -v installs a Debug-level
// slog here. Unset (the default) means no logging at all.
var logger atomic.Pointer[slog.Logger]

// SetLogger installs l as the package logger (nil disables logging).
func SetLogger(l *slog.Logger) { logger.Store(l) }

func logDebug(msg string, args ...any) {
	if l := logger.Load(); l != nil {
		l.Debug(msg, args...)
	}
}

// magic opens every hello exchange; the trailing digit versions the
// frame format. Version '2' added the uint32 Job field to the frame
// header (transport/jobmux). Both ends must agree: helloVersionErr
// turns a prefix-matching, version-differing peer into a loud error
// instead of letting the two sides misparse each other's frames.
var magic = [4]byte{'M', 'T', 'P', '2'}

// headerBytes is the fixed frame header size: payload length, wire size,
// clock bits, job ID.
const headerBytes = 4 + 4 + 8 + 4

// DefaultDialTimeout bounds the rendezvous: how long dialers retry and
// listeners wait for the fabric to assemble.
const DefaultDialTimeout = 10 * time.Second

// dialRetryInterval is the pause between dial attempts while a peer's
// listener is not up yet.
const dialRetryInterval = 20 * time.Millisecond

// Config parameterizes a fabric. Addrs is required; the zero value of
// every other field selects a sensible default.
type Config struct {
	// Addrs[r] is rank r's listen address ("host:port"); its length is
	// the fabric size.
	Addrs []string
	// LocalRanks lists the ranks this process hosts. nil hosts all ranks
	// (the in-process configuration).
	LocalRanks []int
	// Depth is the per-link queue depth (≥ 1); 0 selects
	// transport.DefaultDepth.
	Depth int
	// DialTimeout bounds the rendezvous; 0 selects DefaultDialTimeout.
	DialTimeout time.Duration
}

// Fabric is a TCP-backed transport.Transport. Endpoint is only available
// for the ranks this process hosts.
type Fabric struct {
	n         int
	depth     int
	local     []int
	eps       map[int]*endpoint
	listeners []net.Listener
	conns     []net.Conn
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	writerWG  sync.WaitGroup
	metrics   *obs.FabricMetrics // nil unless telemetry was active at assembly
	// mu orders startConn against Close: a reader of an early-wired pair
	// can poison the fabric while later pairs are still being wired, so
	// conns appends, goroutine Adds and the done check must be atomic
	// with respect to Close's teardown.
	mu sync.Mutex
}

// flushTimeout bounds how long a graceful Close holds the sockets open
// for the writer goroutines to drain their queues. Idle writers exit
// immediately; the timeout only matters when a peer has stopped reading.
const flushTimeout = time.Second

// endpoint is one hosted rank's view of the fabric.
type endpoint struct {
	f     *Fabric
	rank  int
	links map[int]*link // one per peer rank
}

// link is the pair of bounded queues between a hosted rank and one peer,
// bridged to the pair's socket by the reader and writer goroutines.
type link struct {
	sendq chan transport.Packet
	recvq chan transport.Packet
	// eof is closed when the link's reader goroutine — the sole recvq
	// producer — exits; after it, recvq is complete and drainable.
	eof chan struct{}
}

// New assembles a fabric over cfg.Addrs, hosting cfg.LocalRanks: it
// listens, dials every peer pair involving a hosted rank, and returns
// once all connections are up and verified. On error nothing is left
// running.
func New(cfg Config) (*Fabric, error) {
	n := len(cfg.Addrs)
	if n < 1 {
		return nil, errors.New("tcp: need at least one address")
	}
	local := cfg.LocalRanks
	if local == nil {
		local = make([]int, n)
		for r := range local {
			local[r] = r
		}
	}
	if len(local) == 0 {
		return nil, errors.New("tcp: no local ranks")
	}
	isLocal := make(map[int]bool, len(local))
	for _, r := range local {
		if r < 0 || r >= n {
			return nil, fmt.Errorf("tcp: local rank %d out of range [0,%d)", r, n)
		}
		if isLocal[r] {
			return nil, fmt.Errorf("tcp: duplicate local rank %d", r)
		}
		isLocal[r] = true
	}

	listeners := make(map[int]net.Listener, len(local))
	for _, r := range local {
		l, err := net.Listen("tcp", cfg.Addrs[r])
		if err != nil {
			for _, prev := range listeners {
				prev.Close()
			}
			return nil, fmt.Errorf("tcp: rank %d listen %s: %w", r, cfg.Addrs[r], err)
		}
		listeners[r] = l
	}
	return assemble(cfg.Addrs, listeners, local, cfg.Depth, cfg.DialTimeout)
}

// NewLocal assembles an n-rank fabric entirely inside this process, every
// rank on its own ephemeral 127.0.0.1 port — real sockets, loopback
// interface. It is the `-transport tcp` backend of the engines and the
// conformance/equivalence test harness.
func NewLocal(n int) (*Fabric, error) {
	if n < 1 {
		return nil, errors.New("tcp: need n >= 1")
	}
	addrs := make([]string, n)
	listeners := make(map[int]net.Listener, n)
	local := make([]int, n)
	for r := 0; r < n; r++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, prev := range listeners {
				prev.Close()
			}
			return nil, fmt.Errorf("tcp: local rank %d listen: %w", r, err)
		}
		listeners[r] = l
		addrs[r] = l.Addr().String()
		local[r] = r
	}
	return assemble(addrs, listeners, local, 0, 0)
}

// pairKey identifies the unordered rank pair {a, b}.
type pairKey struct{ lo, hi int }

func keyOf(a, b int) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// assemble runs the rendezvous over pre-bound listeners and starts the
// per-pair goroutines. It owns the listeners from here on.
func assemble(addrs []string, listeners map[int]net.Listener, local []int, depth int, timeout time.Duration) (*Fabric, error) {
	n := len(addrs)
	if depth == 0 {
		depth = transport.DefaultDepth
	}
	if depth < 1 {
		for _, l := range listeners {
			l.Close()
		}
		return nil, fmt.Errorf("tcp: depth %d < 1", depth)
	}
	if timeout == 0 {
		timeout = DefaultDialTimeout
	}
	deadline := time.Now().Add(timeout)

	f := &Fabric{n: n, depth: depth, local: local, eps: make(map[int]*endpoint, len(local)), done: make(chan struct{})}
	if reg := obs.Active(); reg != nil {
		hosted := make([]bool, n)
		for _, r := range local {
			hosted[r] = true
		}
		f.metrics = reg.NewFabricMetrics("tcp", n, hosted)
		f.metrics.SetQueueDepthFunc(f.queueDepths)
	}
	logDebug("tcp: assembling fabric", "ranks", n, "local", local, "depth", depth)
	isLocal := make(map[int]bool, len(local))
	for _, r := range local {
		isLocal[r] = true
		ep := &endpoint{f: f, rank: r, links: make(map[int]*link, n-1)}
		for p := 0; p < n; p++ {
			if p == r {
				continue
			}
			ep.links[p] = &link{
				sendq: make(chan transport.Packet, depth),
				recvq: make(chan transport.Packet, depth),
				eof:   make(chan struct{}),
			}
		}
		f.eps[r] = ep
	}
	for _, l := range listeners {
		f.listeners = append(f.listeners, l)
	}

	// The connection plan: one conn per unordered pair touching a hosted
	// rank. The lower rank dials, the higher rank accepts; a pair hosted
	// entirely in this process does both over 127.0.0.1.
	type ends struct {
		dial, accept net.Conn // the hosted side(s) of the pair's conn
	}
	want := make(map[pairKey]*ends)
	dialsFrom := make(map[int][]int) // hosted dialer rank → targets
	acceptsAt := make(map[int]int)   // hosted listener rank → expected inbound conns
	for _, r := range local {
		for p := 0; p < n; p++ {
			if p == r {
				continue
			}
			want[keyOf(r, p)] = &ends{}
			if r < p {
				dialsFrom[r] = append(dialsFrom[r], p)
			} else if !isLocal[p] {
				acceptsAt[r]++
			}
		}
	}
	// A pair hosted at both ends is dialed locally, so the higher rank's
	// listener also expects that inbound conn.
	for _, r := range local {
		for p := 0; p < r; p++ {
			if isLocal[p] {
				acceptsAt[r]++
			}
		}
	}

	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	// Accept loops: each hosted listener takes its expected number of
	// inbound connections, validating the hello on each.
	for r, count := range acceptsAt {
		wg.Add(1)
		go func(rank, count int) {
			defer wg.Done()
			l := listeners[rank]
			if d, ok := l.(*net.TCPListener); ok {
				d.SetDeadline(deadline)
			}
			for i := 0; i < count; i++ {
				conn, err := l.Accept()
				if err != nil {
					fail(fmt.Errorf("tcp: rank %d accept: %w", rank, err))
					return
				}
				from, err := acceptHello(conn, rank, deadline)
				if err != nil {
					conn.Close()
					fail(err)
					return
				}
				mu.Lock()
				e := want[keyOf(rank, from)]
				if e == nil || e.accept != nil {
					mu.Unlock()
					conn.Close()
					fail(fmt.Errorf("tcp: rank %d: unexpected connection from rank %d", rank, from))
					return
				}
				e.accept = conn
				mu.Unlock()
			}
		}(r, count)
	}

	// Dial loops: hosted lower ranks connect out, retrying while the
	// peer's listener is not up yet.
	for r, targets := range dialsFrom {
		for _, p := range targets {
			wg.Add(1)
			go func(rank, peer int) {
				defer wg.Done()
				conn, err := dialHello(addrs[peer], rank, peer, deadline)
				if err != nil {
					fail(err)
					return
				}
				mu.Lock()
				want[keyOf(rank, peer)].dial = conn
				mu.Unlock()
			}(r, p)
		}
	}

	wg.Wait()
	if firstErr != nil {
		for _, e := range want {
			if e.dial != nil {
				e.dial.Close()
			}
			if e.accept != nil {
				e.accept.Close()
			}
		}
		for _, l := range listeners {
			l.Close()
		}
		return nil, firstErr
	}

	// Wire each connection end to its owning rank's link and start the
	// per-end goroutines.
	for key, e := range want {
		lo, hi := key.lo, key.hi
		if isLocal[lo] {
			f.startConn(e.dial, lo, hi)
		}
		if isLocal[hi] {
			f.startConn(e.accept, hi, lo)
		}
	}
	logDebug("tcp: fabric up", "ranks", n, "local", local)
	return f, nil
}

// FabricMetrics returns the fabric's telemetry, nil when telemetry was
// disabled at assembly.
func (f *Fabric) FabricMetrics() *obs.FabricMetrics { return f.metrics }

// queueDepths samples every non-empty send and receive queue of the
// hosted ranks at scrape time.
func (f *Fabric) queueDepths() []obs.QueueDepth {
	var out []obs.QueueDepth
	for _, r := range f.local {
		ep := f.eps[r]
		for peer := 0; peer < f.n; peer++ {
			lk, ok := ep.links[peer]
			if !ok {
				continue
			}
			if d := len(lk.sendq); d > 0 {
				out = append(out, obs.QueueDepth{Label: fmt.Sprintf("sendq %d->%d", r, peer), Depth: d})
			}
			if d := len(lk.recvq); d > 0 {
				out = append(out, obs.QueueDepth{Label: fmt.Sprintf("recvq %d<-%d", r, peer), Depth: d})
			}
		}
	}
	return out
}

// startConn registers conn as owner rank's end of the pair with peer and
// launches its reader and writer goroutines. If the fabric was already
// poisoned (a peer died while later pairs were still being wired), the
// connection is closed instead of started.
func (f *Fabric) startConn(conn net.Conn, owner, peer int) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // collective hops are latency-sensitive
	}
	lk := f.eps[owner].links[peer]
	f.mu.Lock()
	select {
	case <-f.done:
		f.mu.Unlock()
		conn.Close()
		close(lk.eof)
		return
	default:
	}
	f.conns = append(f.conns, conn)
	f.wg.Add(2)
	f.writerWG.Add(1)
	f.mu.Unlock()
	if m := f.metrics; m != nil {
		m.ConnsUp.Add(1)
	}
	logDebug("tcp: link up", "owner", owner, "peer", peer,
		"local", conn.LocalAddr().String(), "remote", conn.RemoteAddr().String())
	go f.readLoop(conn, lk)
	go f.writeLoop(conn, lk)
}

// dialHello connects to addr, retrying until deadline, and performs the
// dialer's half of the hello exchange.
func dialHello(addr string, from, to int, deadline time.Time) (net.Conn, error) {
	var conn net.Conn
	var err error
	for {
		d := net.Dialer{Deadline: deadline}
		conn, err = d.Dial("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("tcp: rank %d dial rank %d (%s): %w", from, to, addr, err)
		}
		time.Sleep(dialRetryInterval)
	}
	conn.SetDeadline(deadline)
	var hello [12]byte
	copy(hello[:4], magic[:])
	binary.LittleEndian.PutUint32(hello[4:], uint32(from))
	binary.LittleEndian.PutUint32(hello[8:], uint32(to))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("tcp: rank %d hello to rank %d: %w", from, to, err)
	}
	var reply [12]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("tcp: rank %d hello reply from rank %d: %w", from, to, err)
	}
	if err := helloVersionErr(reply[:4], from); err != nil {
		conn.Close()
		return nil, err
	}
	if [4]byte(reply[:4]) != magic ||
		binary.LittleEndian.Uint32(reply[4:]) != uint32(to) ||
		binary.LittleEndian.Uint32(reply[8:]) != uint32(from) {
		conn.Close()
		return nil, fmt.Errorf("tcp: rank %d: bad hello reply from %s", from, addr)
	}
	conn.SetDeadline(time.Time{})
	return conn, nil
}

// acceptHello performs the listener's half of the hello exchange and
// returns the dialer's rank.
func acceptHello(conn net.Conn, rank int, deadline time.Time) (int, error) {
	conn.SetDeadline(deadline)
	var hello [12]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return 0, fmt.Errorf("tcp: rank %d read hello: %w", rank, err)
	}
	if err := helloVersionErr(hello[:4], rank); err != nil {
		return 0, err
	}
	if [4]byte(hello[:4]) != magic {
		return 0, fmt.Errorf("tcp: rank %d: bad hello magic", rank)
	}
	from := int(binary.LittleEndian.Uint32(hello[4:]))
	to := int(binary.LittleEndian.Uint32(hello[8:]))
	if to != rank || from >= rank || from < 0 {
		return 0, fmt.Errorf("tcp: rank %d: hello claims %d→%d", rank, from, to)
	}
	var reply [12]byte
	copy(reply[:4], magic[:])
	binary.LittleEndian.PutUint32(reply[4:], uint32(rank))
	binary.LittleEndian.PutUint32(reply[8:], uint32(from))
	if _, err := conn.Write(reply[:]); err != nil {
		return 0, fmt.Errorf("tcp: rank %d hello reply: %w", rank, err)
	}
	conn.SetDeadline(time.Time{})
	return from, nil
}

// helloVersionErr distinguishes a peer speaking a different frame
// version (magic prefix "MTP" intact, version byte differs) from plain
// garbage. Catching this before the rank fields are trusted means a
// mixed-version fleet fails the rendezvous loudly instead of misparsing
// the other side's frame headers.
func helloVersionErr(got []byte, rank int) error {
	if [3]byte(got[:3]) == [3]byte{'M', 'T', 'P'} && got[3] != magic[3] {
		return fmt.Errorf("tcp: rank %d: frame version mismatch: peer speaks MTP%c, this build speaks MTP%c",
			rank, got[3], magic[3])
	}
	return nil
}

// readBufBytes sizes the per-connection read buffer: one kernel read
// can deliver many back-to-back frames (chunk-pipelined hops produce
// trains of small ones), so headers and small payloads parse out of
// the buffer instead of costing a syscall each.
const readBufBytes = 64 << 10

// readLoop parses frames off conn into lk.recvq until the fabric closes.
// Any other read failure means a peer died mid-run: the whole fabric is
// poisoned so blocked collectives fail fast with ErrClosed. Frames are
// read through a buffered reader; bytes already buffered keep parsing
// after a close, matching the pre-buffering drain semantics.
func (f *Fabric) readLoop(conn net.Conn, lk *link) {
	defer f.wg.Done()
	defer close(lk.eof)
	if m := f.metrics; m != nil {
		defer m.ConnsUp.Add(-1)
	}
	br := bufio.NewReaderSize(conn, readBufBytes)
	var hdr [headerBytes]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			f.poison()
			return
		}
		size := int(binary.LittleEndian.Uint32(hdr[0:]))
		p := transport.Packet{
			Wire:  int(binary.LittleEndian.Uint32(hdr[4:])),
			Clock: math.Float64frombits(binary.LittleEndian.Uint64(hdr[8:])),
			Job:   binary.LittleEndian.Uint32(hdr[16:]),
		}
		if size > 0 {
			p.Data = transport.GetBuffer(size)
			if _, err := io.ReadFull(br, p.Data); err != nil {
				f.poison()
				return
			}
		}
		// Prefer delivery over the closing signal so frames parsed before
		// (or racing) a shutdown stay observable; only a full queue during
		// teardown drops the packet.
		select {
		case lk.recvq <- p:
			continue
		default:
		}
		select {
		case lk.recvq <- p:
		case <-f.done:
			return
		}
	}
}

// writeBatch bounds how many queued frames one writev coalesces. A
// chunk-pipelined hop enqueues a train of frames back to back; draining
// them into a single vectored write turns S syscalls into one.
const writeBatch = 16

// frameWriter coalesces queued frames into vectored writes: frame
// headers come from a fixed per-connection slab (no per-frame
// allocation) and each flush is one writev covering every pending
// header and payload. Payload buffers are recycled once their bytes
// are on the socket.
type frameWriter struct {
	conn    net.Conn
	hdrs    [writeBatch][headerBytes]byte
	pend    []transport.Packet
	vecs    net.Buffers
	batches *obs.Histogram // frames per flush; nil when telemetry is off
}

func newFrameWriter(conn net.Conn, batches *obs.Histogram) *frameWriter {
	return &frameWriter{
		conn:    conn,
		pend:    make([]transport.Packet, 0, writeBatch),
		vecs:    make(net.Buffers, 0, 2*writeBatch),
		batches: batches,
	}
}

// add queues p for the next flush; full reports a mandatory flush.
func (w *frameWriter) add(p transport.Packet) (full bool) {
	w.pend = append(w.pend, p)
	return len(w.pend) == writeBatch
}

// flush writes every pending frame with one vectored write and recycles
// the payloads. It reports success; a short or failed write poisons the
// connection's fabric at the caller.
func (w *frameWriter) flush() bool {
	if len(w.pend) == 0 {
		return true
	}
	w.vecs = w.vecs[:0]
	for i := range w.pend {
		p := &w.pend[i]
		hdr := &w.hdrs[i]
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(p.Data)))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(p.Wire))
		binary.LittleEndian.PutUint64(hdr[8:], math.Float64bits(p.Clock))
		binary.LittleEndian.PutUint32(hdr[16:], p.Job)
		w.vecs = append(w.vecs, hdr[:])
		if len(p.Data) > 0 {
			w.vecs = append(w.vecs, p.Data)
		}
	}
	// WriteTo consumes the slice it is called on; hand it a copy so
	// w.vecs keeps its backing array for the next flush.
	out := w.vecs
	if _, err := out.WriteTo(w.conn); err != nil {
		return false
	}
	if w.batches != nil {
		w.batches.Observe(int64(len(w.pend)))
	}
	for _, p := range w.pend {
		transport.PutBuffer(p.Data)
	}
	w.pend = w.pend[:0]
	return true
}

// writeLoop drains lk.sendq onto conn. Each wakeup opportunistically
// batches every frame already queued (bounded by writeBatch) into one
// vectored write, so a pipelined train of chunks costs one syscall
// instead of one per frame. Sent payload buffers are recycled: the
// sender gave them up at Send and the bytes are on the socket. After
// Close the queue's remaining frames are still flushed (Close holds the
// sockets open for the flush window), so farewell messages enqueued
// right before a graceful shutdown reach the peer.
func (f *Fabric) writeLoop(conn net.Conn, lk *link) {
	defer f.writerWG.Done()
	defer f.wg.Done()
	var batches *obs.Histogram
	if m := f.metrics; m != nil {
		batches = m.WritevBatch
	}
	w := newFrameWriter(conn, batches)
	for {
		select {
		case p := <-lk.sendq:
			full := w.add(p)
			for !full {
				select {
				case q := <-lk.sendq:
					full = w.add(q)
					continue
				default:
				}
				break
			}
			if !w.flush() {
				f.poison()
				return
			}
		case <-f.done:
			for {
				select {
				case p := <-lk.sendq:
					if w.add(p) && !w.flush() {
						return
					}
				default:
					w.flush()
					return
				}
			}
		}
	}
}

// poison closes the fabric in response to an unexpected socket failure.
func (f *Fabric) poison() {
	select {
	case <-f.done:
		return // already closing: socket errors are expected teardown
	default:
		logDebug("tcp: fabric poisoned by socket failure", "local", f.local)
		f.Close()
	}
}

// Size implements transport.Transport.
func (f *Fabric) Size() int { return f.n }

// LocalRanks returns the ranks hosted by this fabric, in Config order.
func (f *Fabric) LocalRanks() []int { return append([]int(nil), f.local...) }

// Endpoint implements transport.Transport. Only hosted ranks have an
// endpoint; asking for a remote rank is a wiring bug and panics.
func (f *Fabric) Endpoint(rank int) transport.Endpoint {
	if rank < 0 || rank >= f.n {
		panic(fmt.Sprintf("tcp: rank %d out of range [0,%d)", rank, f.n))
	}
	ep, ok := f.eps[rank]
	if !ok {
		panic(fmt.Sprintf("tcp: rank %d is not hosted by this fabric (local ranks %v)", rank, f.local))
	}
	return ep
}

// Close implements transport.Transport: every socket and listener is torn
// down, blocked Sends and Recvs return ErrClosed, and packets already
// parsed into receive queues stay drainable. Frames enqueued before the
// close are flushed (bounded by flushTimeout) so a graceful shutdown
// does not truncate the conversation mid-queue. Close is idempotent.
func (f *Fabric) Close() error {
	f.closeOnce.Do(func() {
		logDebug("tcp: closing fabric", "local", f.local)
		// Closing done under mu fences startConn: afterwards no new
		// connection is registered and no writerWG.Add races the Wait.
		f.mu.Lock()
		close(f.done)
		f.mu.Unlock()
		flushed := make(chan struct{})
		go func() {
			f.writerWG.Wait()
			close(flushed)
		}()
		select {
		case <-flushed:
		case <-time.After(flushTimeout):
		}
		f.mu.Lock()
		conns := append([]net.Conn(nil), f.conns...)
		f.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
		for _, l := range f.listeners {
			l.Close()
		}
	})
	return nil
}

// Rank implements transport.Endpoint.
func (e *endpoint) Rank() int { return e.rank }

// Size implements transport.Endpoint.
func (e *endpoint) Size() int { return e.f.n }

// Send implements transport.Endpoint: the packet is queued for the pair's
// writer goroutine. Send blocks while the queue is full and returns
// ErrClosed once the fabric is down.
func (e *endpoint) Send(to int, p transport.Packet) error {
	lk, ok := e.links[to]
	if !ok {
		panic(fmt.Sprintf("tcp: rank %d send to invalid rank %d", e.rank, to))
	}
	if p.Wire < 0 || int64(p.Wire) > math.MaxUint32 {
		return fmt.Errorf("tcp: wire size %d does not fit the frame header", p.Wire)
	}
	if int64(len(p.Data)) > math.MaxUint32 {
		return fmt.Errorf("tcp: payload of %d bytes does not fit the frame header", len(p.Data))
	}
	select {
	case <-e.f.done:
		return transport.ErrClosed
	default:
	}
	select {
	case lk.sendq <- p:
		if m := e.f.metrics; m != nil {
			m.OnSend(e.rank, to, p.Wire, len(p.Data))
		}
		return nil
	case <-e.f.done:
		return transport.ErrClosed
	}
}

// delivered counts p against the fabric metrics on its way out of Recv.
func (e *endpoint) delivered(from int, p transport.Packet) (transport.Packet, error) {
	if m := e.f.metrics; m != nil {
		m.OnRecv(from, e.rank, p.Wire, len(p.Data))
	}
	return p, nil
}

// Recv implements transport.Endpoint: it blocks until the pair's reader
// goroutine has parsed a frame. Like Loopback, already-delivered packets
// are preferred over the closing signal.
func (e *endpoint) Recv(from int) (transport.Packet, error) {
	lk, ok := e.links[from]
	if !ok {
		panic(fmt.Sprintf("tcp: rank %d recv from invalid rank %d", e.rank, from))
	}
	select {
	case p := <-lk.recvq:
		return e.delivered(from, p)
	default:
	}
	select {
	case p := <-lk.recvq:
		return e.delivered(from, p)
	case <-e.f.done:
	}
	// The fabric is closing. The link's reader is the sole recvq
	// producer: wait for it to settle (Close's teardown of the socket
	// bounds this) so frames already parsed or mid-parse land, then take
	// whatever was delivered ahead of the close.
	<-lk.eof
	select {
	case p := <-lk.recvq:
		return e.delivered(from, p)
	default:
	}
	return transport.Packet{}, transport.ErrClosed
}
