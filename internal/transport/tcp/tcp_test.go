package tcp_test

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"marsit/internal/transport"
	"marsit/internal/transport/tcp"
	"marsit/internal/transport/transporttest"
)

// TestTCPConformance runs the shared transport conformance suite against
// real sockets on the loopback interface.
func TestTCPConformance(t *testing.T) {
	transporttest.Run(t, func(t *testing.T, n int) transport.Transport {
		f, err := tcp.NewLocal(n)
		if err != nil {
			t.Fatalf("NewLocal(%d): %v", n, err)
		}
		return f
	})
}

// buildSplitFabrics assembles one logical fabric from per-rank Fabric
// instances — the multi-process shape, each rank with its own listener
// and sockets. The reserve-then-rebind address pattern can collide with
// other test binaries' ephemeral listeners, so assembly retries on
// fresh ports.
func buildSplitFabrics(t *testing.T, n int) []*tcp.Fabric {
	t.Helper()
	const attempts = 3
	var errs []error
	for try := 0; try < attempts; try++ {
		addrs := reserveAddrs(t, n)
		fabrics := make([]*tcp.Fabric, n)
		errs = make([]error, n)
		var build sync.WaitGroup
		for r := 0; r < n; r++ {
			build.Add(1)
			go func(rank int) {
				defer build.Done()
				fabrics[rank], errs[rank] = tcp.New(tcp.Config{
					Addrs:       addrs,
					LocalRanks:  []int{rank},
					DialTimeout: 10 * time.Second,
				})
			}(r)
		}
		build.Wait()
		failed := false
		for _, err := range errs {
			if err != nil {
				failed = true
			}
		}
		if !failed {
			return fabrics
		}
		for _, f := range fabrics {
			if f != nil {
				f.Close()
			}
		}
		t.Logf("attempt %d hit a rendezvous port collision, retrying: %v", try, errs)
	}
	t.Fatalf("split-fabric rendezvous kept failing after %d attempts: %v", attempts, errs)
	return nil
}

// TestTCPSplitFabrics assembles the multi-process shape and runs a ring
// exchange with a large payload across the per-rank fabrics.
func TestTCPSplitFabrics(t *testing.T) {
	const n = 4
	fabrics := buildSplitFabrics(t, n)
	defer func() {
		for _, f := range fabrics {
			f.Close()
		}
	}()

	for r, f := range fabrics {
		if got := f.LocalRanks(); len(got) != 1 || got[0] != r {
			t.Fatalf("rank %d fabric hosts %v", r, got)
		}
	}

	// Ring exchange with a payload large enough to span many TCP segments.
	const steps, payload = 10, 1 << 18
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			defer wg.Done()
			ep := fabrics[rank].Endpoint(rank)
			next, prev := (rank+1)%n, (rank+n-1)%n
			for s := 0; s < steps; s++ {
				data := make([]byte, payload)
				for i := range data {
					data[i] = byte(rank + s + i)
				}
				if err := ep.Send(next, transport.Packet{Data: data, Wire: payload, Clock: float64(s)}); err != nil {
					t.Errorf("rank %d step %d send: %v", rank, s, err)
					return
				}
				p, err := ep.Recv(prev)
				if err != nil {
					t.Errorf("rank %d step %d recv: %v", rank, s, err)
					return
				}
				if len(p.Data) != payload || p.Wire != payload || p.Clock != float64(s) {
					t.Errorf("rank %d step %d: header %d/%d/%v", rank, s, len(p.Data), p.Wire, p.Clock)
					return
				}
				for i := 0; i < payload; i += 997 {
					if p.Data[i] != byte(prev+s+i) {
						t.Errorf("rank %d step %d: corrupt byte %d", rank, s, i)
						return
					}
				}
				transport.PutBuffer(p.Data)
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("split-fabric ring exchange deadlocked")
	}
}

// TestTCPPeerDeathPoisonsFabric checks that a peer disappearing mid-run
// surfaces as ErrClosed on the survivor instead of hanging it.
func TestTCPPeerDeathPoisonsFabric(t *testing.T) {
	fabrics := buildSplitFabrics(t, 2)
	a, b := fabrics[0], fabrics[1]
	defer a.Close()

	got := make(chan error, 1)
	go func() {
		_, err := a.Endpoint(0).Recv(1)
		got <- err
	}()
	time.Sleep(20 * time.Millisecond)
	b.Close() // rank 1 "dies"
	select {
	case err := <-got:
		if err != transport.ErrClosed {
			t.Fatalf("survivor got %v, want ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("survivor still blocked after peer death")
	}
}

// TestTCPConfigValidation covers the rejection paths.
func TestTCPConfigValidation(t *testing.T) {
	if _, err := tcp.New(tcp.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := tcp.New(tcp.Config{Addrs: []string{"127.0.0.1:0", "127.0.0.1:0"}, LocalRanks: []int{2}}); err == nil {
		t.Fatal("out-of-range local rank accepted")
	}
	if _, err := tcp.New(tcp.Config{Addrs: []string{"127.0.0.1:0", "127.0.0.1:0"}, LocalRanks: []int{0, 0}}); err == nil {
		t.Fatal("duplicate local rank accepted")
	}
	// A dial with nobody listening must fail within the timeout, not hang.
	addrs := reserveAddrs(t, 2) // addrs[1] was released: nothing listens there
	start := time.Now()
	_, err := tcp.New(tcp.Config{
		Addrs:       addrs,
		LocalRanks:  []int{0},
		DialTimeout: 300 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("unreachable peer accepted")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("timeout not honored (%v)", time.Since(start))
	}
	if !strings.Contains(err.Error(), "dial") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// reserveAddrs picks n distinct loopback addresses that were free at
// call time by binding and releasing ephemeral ports.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}
