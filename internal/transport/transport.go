// Package transport abstracts point-to-point message passing between the
// ranks of the concurrent execution engine (internal/runtime). A Transport
// is a fabric connecting n ranks; each rank obtains its Endpoint once and
// then exchanges Packets with peers from its own goroutine.
//
// The contract is deliberately minimal — FIFO per (sender, receiver) pair,
// blocking receives, byte-slice payloads — and collectives are written
// against Endpoint only, never assuming shared memory. Four backends
// implement it:
//
//   - Loopback (this package): n² buffered in-process channels, zero-copy
//     payload delivery.
//   - TCP (transport/tcp): one full-duplex socket per rank pair carrying
//     length-prefixed frames of Wire, Clock and payload, with a
//     rendezvous layer that assembles an n-rank fabric from a list of
//     addresses — across goroutines, processes or machines
//     (cmd/marsit-node hosts one rank per process).
//   - Shared memory (transport/shm): one mmap'd single-producer
//     single-consumer ring per ordered rank pair, carrying the same
//     frame layout as TCP without sockets or syscalls on the data
//     path — for ranks co-located on one machine (see docs/transport.md).
//   - Hybrid (transport/hybrid): a composite that routes each (from, to)
//     link to shm when both ranks share a host and to TCP otherwise,
//     from a rank→host map.
//
// The shared conformance suite in transport/transporttest pins the
// contract for every backend. GetBuffer/PutBuffer recycle payload buffers
// through a pool shared by all of them; see their ownership contract.
package transport

import "errors"

// ErrClosed is returned by Send and Recv after the transport is closed.
var ErrClosed = errors.New("transport: closed")

// Packet is one point-to-point message between ranks.
type Packet struct {
	// Data is the serialized payload. The loopback transport passes the
	// slice by reference, so a sender must not mutate or reuse it after
	// Send; wire backends would copy it onto the socket instead.
	Data []byte
	// Job identifies the training job this packet belongs to. 0 is the
	// default (one-shot runs and the daemon's control channel); the
	// jobmux middleware stamps it on Send and demultiplexes per-job
	// endpoints over one shared fabric. Backends must deliver it intact
	// next to Wire and Clock (the TCP frame header carries it; the hello
	// handshake version-gates the extension so mixed-version fleets fail
	// fast instead of misparsing frames). Like the frame header itself it
	// is never charged to the simulation.
	Job uint32
	// Wire is the simulated size of this message in bytes. It may differ
	// from len(Data): the simulation charges float32 wire widths and
	// headerless bit payloads while the in-memory encoding is float64
	// with framing.
	Wire int
	// Clock is the sender's virtual clock (simulated seconds) when the
	// packet was posted. Receivers use it to reproduce the α–β arrival
	// arithmetic of the netsim cost model, keeping virtual time identical
	// between the sequential and concurrent engines.
	Clock float64
}

// Endpoint is one rank's view of the fabric. An Endpoint must only be
// used from a single goroutine at a time.
type Endpoint interface {
	// Rank returns the rank this endpoint belongs to.
	Rank() int
	// Size returns the number of ranks in the fabric.
	Size() int
	// Send posts p to rank to. Packets between a fixed (sender, receiver)
	// pair are delivered in FIFO order. Send may block while the link
	// buffer is full; it returns ErrClosed after Close.
	Send(to int, p Packet) error
	// Recv blocks until a packet from rank from arrives; it returns
	// ErrClosed after Close.
	Recv(from int) (Packet, error)
}

// Transport is a fabric connecting Size ranks, one Endpoint each.
type Transport interface {
	// Size returns the number of ranks.
	Size() int
	// Endpoint returns rank's endpoint. The same Endpoint is returned on
	// every call for a given rank.
	Endpoint(rank int) Endpoint
	// Close tears the fabric down, unblocking pending Sends and Recvs
	// with ErrClosed. Close is idempotent.
	Close() error
}
