package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitAll fails the test if the wait group does not drain within the
// timeout — the deadlock detector for the exchange patterns below.
func waitAll(t *testing.T, wg *sync.WaitGroup, timeout time.Duration, what string) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatalf("%s: deadlock (no progress within %v)", what, timeout)
	}
}

// TestLoopbackFIFOOrdering checks that packets between a fixed pair are
// delivered in send order, with payload, wire size and clock intact.
func TestLoopbackFIFOOrdering(t *testing.T) {
	l := NewLoopbackDepth(2, 4)
	defer l.Close()
	const n = 100
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ep := l.Endpoint(0)
		for i := 0; i < n; i++ {
			p := Packet{Data: []byte{byte(i)}, Wire: i, Clock: float64(i) / 8}
			if err := ep.Send(1, p); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		ep := l.Endpoint(1)
		for i := 0; i < n; i++ {
			p, err := ep.Recv(0)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			if len(p.Data) != 1 || p.Data[0] != byte(i) || p.Wire != i || p.Clock != float64(i)/8 {
				t.Errorf("recv %d: got %+v", i, p)
				return
			}
		}
	}()
	waitAll(t, &wg, 5*time.Second, "fifo ordering")
}

// TestLoopbackConcurrentPairwiseExchange has every ordered pair of ranks
// exchange messages concurrently; each rank verifies the payloads it
// receives from every peer. Run under -race this also checks the fabric
// itself is data-race free.
func TestLoopbackConcurrentPairwiseExchange(t *testing.T) {
	const n, rounds = 5, 20
	l := NewLoopback(n)
	defer l.Close()
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			defer wg.Done()
			ep := l.Endpoint(rank)
			for k := 0; k < rounds; k++ {
				for peer := 0; peer < n; peer++ {
					if peer == rank {
						continue
					}
					msg := []byte(fmt.Sprintf("%d->%d#%d", rank, peer, k))
					if err := ep.Send(peer, Packet{Data: msg, Wire: len(msg)}); err != nil {
						t.Errorf("rank %d send: %v", rank, err)
						return
					}
				}
				for peer := 0; peer < n; peer++ {
					if peer == rank {
						continue
					}
					p, err := ep.Recv(peer)
					if err != nil {
						t.Errorf("rank %d recv: %v", rank, err)
						return
					}
					want := fmt.Sprintf("%d->%d#%d", peer, rank, k)
					if string(p.Data) != want {
						t.Errorf("rank %d got %q, want %q", rank, p.Data, want)
						return
					}
				}
			}
		}(r)
	}
	waitAll(t, &wg, 10*time.Second, "pairwise exchange")
}

// ringExchange runs the collective engine's neighbor pattern — every rank
// posts to its successor, then receives from its predecessor — for several
// steps, the shape whose all-send cycle deadlocks on unbuffered links.
func ringExchange(t *testing.T, n, steps int) {
	t.Helper()
	l := NewLoopbackDepth(n, 1) // minimal legal depth: the hard case
	defer l.Close()
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			defer wg.Done()
			ep := l.Endpoint(rank)
			next := (rank + 1) % n
			prev := (rank - 1 + n) % n
			for s := 0; s < steps; s++ {
				if err := ep.Send(next, Packet{Data: []byte{byte(s)}, Wire: 1}); err != nil {
					t.Errorf("rank %d step %d send: %v", rank, s, err)
					return
				}
				p, err := ep.Recv(prev)
				if err != nil {
					t.Errorf("rank %d step %d recv: %v", rank, s, err)
					return
				}
				if p.Data[0] != byte(s) {
					t.Errorf("rank %d step %d: got %d", rank, s, p.Data[0])
					return
				}
			}
		}(r)
	}
	waitAll(t, &wg, 10*time.Second, fmt.Sprintf("ring M=%d", n))
}

// TestLoopbackRingDeadlockFreedom covers the smallest ring (M=2, where
// both directions share the two ranks but distinct links) and odd sizes
// where no pairing symmetry helps.
func TestLoopbackRingDeadlockFreedom(t *testing.T) {
	for _, n := range []int{2, 3, 5, 7} {
		t.Run(fmt.Sprintf("M=%d", n), func(t *testing.T) { ringExchange(t, n, 50) })
	}
}

// TestLoopbackCloseUnblocks checks that Close releases a blocked Recv and
// a blocked Send with ErrClosed, and that buffered packets remain
// receivable after Close.
func TestLoopbackCloseUnblocks(t *testing.T) {
	l := NewLoopbackDepth(2, 1)
	errs := make(chan error, 2)
	go func() {
		_, err := l.Endpoint(1).Recv(0) // link 0→1: nothing ever sent
		errs <- err
	}()
	if err := l.Endpoint(1).Send(0, Packet{Data: []byte("x"), Wire: 1}); err != nil {
		t.Fatalf("first send: %v", err)
	}
	go func() {
		// Link 1→0 buffer (depth 1) already full: this send blocks.
		errs <- l.Endpoint(1).Send(0, Packet{Data: []byte("y"), Wire: 1})
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	l.Close() // idempotent
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != ErrClosed {
				t.Fatalf("got %v, want ErrClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Close did not unblock")
		}
	}
	// The buffered "x" must still be drainable post-Close.
	if p, err := l.Endpoint(0).Recv(1); err != nil || string(p.Data) != "x" {
		t.Fatalf("buffered packet after Close: %+v, %v", p, err)
	}
}
