// Package transporttest is the shared conformance suite for
// transport.Transport implementations. Every backend — the in-process
// Loopback, the TCP fabric, and whatever comes next — must exhibit the
// same observable contract: per-pair FIFO delivery with intact Wire and
// Clock fields, genuinely blocking receives, Close unblocking pending
// operations, ErrClosed after Close, and deadlock-free neighbor exchange
// on rings of odd and even size. Backend packages invoke Run from their
// own tests with a factory for their fabric.
package transporttest

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"marsit/internal/obs"
	"marsit/internal/transport"
)

// Factory builds a fresh fabric of n ranks for one subtest. The suite
// closes it.
type Factory func(t *testing.T, n int) transport.Transport

// Run exercises the full conformance suite against the backend built by
// factory.
func Run(t *testing.T, factory Factory) {
	t.Run("RankAndSize", func(t *testing.T) { testRankAndSize(t, factory) })
	t.Run("FIFOPerPair", func(t *testing.T) { testFIFOPerPair(t, factory) })
	t.Run("PairwiseExchange", func(t *testing.T) { testPairwiseExchange(t, factory) })
	t.Run("BlockingRecv", func(t *testing.T) { testBlockingRecv(t, factory) })
	t.Run("CloseUnblocksRecv", func(t *testing.T) { testCloseUnblocksRecv(t, factory) })
	t.Run("ErrClosedAfterClose", func(t *testing.T) { testErrClosedAfterClose(t, factory) })
	for _, n := range []int{2, 3, 4, 5} {
		n := n
		t.Run(fmt.Sprintf("RingDeadlockFreedom/M=%d", n), func(t *testing.T) {
			testRingExchange(t, factory, n, 50)
		})
	}
	t.Run("Metrics", func(t *testing.T) { testMetrics(t, factory) })
}

// metered is the optional telemetry accessor a backend exposes when it
// was built under an active obs registry.
type metered interface {
	FabricMetrics() *obs.FabricMetrics
}

// testMetrics pins the cross-backend metric contract: with telemetry
// active at construction, every ordered pair's sent counters equal the
// receiver's delivered counters, and wire/payload byte totals match
// exactly what the packets declared. Backends without a FabricMetrics
// accessor fail — instrumenting both sides is part of the contract.
func testMetrics(t *testing.T, factory Factory) {
	defer obs.SetActive(obs.NewRegistry())()
	const n, rounds = 4, 5
	tr := factory(t, n)
	defer tr.Close()
	m, ok := tr.(metered)
	if !ok {
		t.Fatalf("%T does not expose FabricMetrics()", tr)
	}
	fm := m.FabricMetrics()
	if fm == nil {
		t.Fatal("FabricMetrics() = nil despite an active registry at construction")
	}

	// wireOf/payloadOf make every ordered pair's traffic distinct so a
	// mixed-up index would be caught, not masked by symmetry.
	wireOf := func(from, to int) int { return 1000 + 10*from + to }
	payloadOf := func(from, to int) int { return 1 + 2*from + to }

	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			defer wg.Done()
			ep := tr.Endpoint(rank)
			for k := 0; k < rounds; k++ {
				for peer := 0; peer < n; peer++ {
					if peer == rank {
						continue
					}
					p := transport.Packet{
						Data: make([]byte, payloadOf(rank, peer)),
						Wire: wireOf(rank, peer),
					}
					if err := ep.Send(peer, p); err != nil {
						t.Errorf("rank %d send: %v", rank, err)
						return
					}
				}
				for peer := 0; peer < n; peer++ {
					if peer == rank {
						continue
					}
					if _, err := ep.Recv(peer); err != nil {
						t.Errorf("rank %d recv: %v", rank, err)
						return
					}
				}
			}
		}(r)
	}
	waitAll(t, &wg, 15*time.Second, "metrics exchange")

	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			if got := fm.FramesSent(from, to); got != rounds {
				t.Errorf("FramesSent(%d,%d) = %d, want %d", from, to, got, rounds)
			}
			if sent, recv := fm.FramesSent(from, to), fm.FramesRecv(from, to); sent != recv {
				t.Errorf("pair (%d,%d): frames sent %d != delivered %d", from, to, sent, recv)
			}
			wantWire := int64(rounds * wireOf(from, to))
			if got := fm.WireSent(from, to); got != wantWire {
				t.Errorf("WireSent(%d,%d) = %d, want %d", from, to, got, wantWire)
			}
			if got := fm.WireRecv(from, to); got != wantWire {
				t.Errorf("WireRecv(%d,%d) = %d, want %d", from, to, got, wantWire)
			}
			wantBytes := int64(rounds * payloadOf(from, to))
			if got := fm.BytesSent(from, to); got != wantBytes {
				t.Errorf("BytesSent(%d,%d) = %d, want %d", from, to, got, wantBytes)
			}
			if got := fm.BytesRecv(from, to); got != wantBytes {
				t.Errorf("BytesRecv(%d,%d) = %d, want %d", from, to, got, wantBytes)
			}
		}
	}
}

// waitAll fails the test if the wait group does not drain within the
// timeout — the deadlock detector for the exchange patterns.
func waitAll(t *testing.T, wg *sync.WaitGroup, timeout time.Duration, what string) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatalf("%s: deadlock (no progress within %v)", what, timeout)
	}
}

func testRankAndSize(t *testing.T, factory Factory) {
	const n = 3
	tr := factory(t, n)
	defer tr.Close()
	if tr.Size() != n {
		t.Fatalf("Size() = %d, want %d", tr.Size(), n)
	}
	for r := 0; r < n; r++ {
		ep := tr.Endpoint(r)
		if ep.Rank() != r || ep.Size() != n {
			t.Fatalf("endpoint %d reports rank %d size %d", r, ep.Rank(), ep.Size())
		}
	}
}

// testFIFOPerPair checks packets between a fixed pair arrive in send
// order with payload, Wire, Clock and Job intact. A job-scoped view
// (anything exposing ID() uint32, i.e. a jobmux fabric) owns the Job
// field instead: it must stamp its own id on every delivered frame.
func testFIFOPerPair(t *testing.T, factory Factory) {
	tr := factory(t, 2)
	defer tr.Close()
	wantJob := func(i int) uint32 { return uint32(i % 3) }
	if scoped, ok := tr.(interface{ ID() uint32 }); ok {
		id := scoped.ID()
		wantJob = func(int) uint32 { return id }
	}
	const count = 100
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ep := tr.Endpoint(0)
		for i := 0; i < count; i++ {
			p := transport.Packet{Data: []byte{byte(i), byte(i >> 8)}, Wire: i, Clock: float64(i) / 8, Job: uint32(i % 3)}
			if err := ep.Send(1, p); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		ep := tr.Endpoint(1)
		for i := 0; i < count; i++ {
			p, err := ep.Recv(0)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			if len(p.Data) != 2 || p.Data[0] != byte(i) || p.Data[1] != byte(i>>8) ||
				p.Wire != i || p.Clock != float64(i)/8 || p.Job != wantJob(i) {
				t.Errorf("recv %d: got %+v", i, p)
				return
			}
		}
	}()
	waitAll(t, &wg, 10*time.Second, "fifo per pair")
}

// testPairwiseExchange has every ordered pair exchange messages
// concurrently for several rounds; under -race this also checks the
// fabric is data-race free.
func testPairwiseExchange(t *testing.T, factory Factory) {
	const n, rounds = 4, 20
	tr := factory(t, n)
	defer tr.Close()
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			defer wg.Done()
			ep := tr.Endpoint(rank)
			for k := 0; k < rounds; k++ {
				for peer := 0; peer < n; peer++ {
					if peer == rank {
						continue
					}
					msg := []byte(fmt.Sprintf("%d->%d#%d", rank, peer, k))
					if err := ep.Send(peer, transport.Packet{Data: msg, Wire: len(msg)}); err != nil {
						t.Errorf("rank %d send: %v", rank, err)
						return
					}
				}
				for peer := 0; peer < n; peer++ {
					if peer == rank {
						continue
					}
					p, err := ep.Recv(peer)
					if err != nil {
						t.Errorf("rank %d recv: %v", rank, err)
						return
					}
					want := fmt.Sprintf("%d->%d#%d", peer, rank, k)
					if string(p.Data) != want {
						t.Errorf("rank %d got %q, want %q", rank, p.Data, want)
						return
					}
				}
			}
		}(r)
	}
	waitAll(t, &wg, 15*time.Second, "pairwise exchange")
}

// testBlockingRecv checks Recv genuinely blocks until a packet arrives,
// then returns exactly it.
func testBlockingRecv(t *testing.T, factory Factory) {
	tr := factory(t, 2)
	defer tr.Close()
	got := make(chan transport.Packet, 1)
	errs := make(chan error, 1)
	go func() {
		p, err := tr.Endpoint(1).Recv(0)
		if err != nil {
			errs <- err
			return
		}
		got <- p
	}()
	select {
	case p := <-got:
		t.Fatalf("Recv returned %+v before anything was sent", p)
	case err := <-errs:
		t.Fatalf("Recv failed early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := tr.Endpoint(0).Send(1, transport.Packet{Data: []byte("late"), Wire: 4, Clock: 2.5}); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case p := <-got:
		if string(p.Data) != "late" || p.Wire != 4 || p.Clock != 2.5 {
			t.Fatalf("got %+v", p)
		}
	case err := <-errs:
		t.Fatalf("recv: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("Recv did not wake after Send")
	}
}

// testCloseUnblocksRecv checks Close releases a Recv blocked on a link
// that never receives traffic.
func testCloseUnblocksRecv(t *testing.T, factory Factory) {
	tr := factory(t, 2)
	errs := make(chan error, 1)
	go func() {
		_, err := tr.Endpoint(1).Recv(0)
		errs <- err
	}()
	time.Sleep(20 * time.Millisecond)
	tr.Close()
	tr.Close() // idempotent
	select {
	case err := <-errs:
		if err != transport.ErrClosed {
			t.Fatalf("got %v, want ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not unblock Recv")
	}
}

// testErrClosedAfterClose checks Send and Recv report ErrClosed once the
// fabric is down.
func testErrClosedAfterClose(t *testing.T, factory Factory) {
	tr := factory(t, 2)
	tr.Close()
	if err := tr.Endpoint(0).Send(1, transport.Packet{Data: []byte("x"), Wire: 1}); err != transport.ErrClosed {
		t.Fatalf("Send after Close: %v, want ErrClosed", err)
	}
	if _, err := tr.Endpoint(1).Recv(0); err != transport.ErrClosed {
		t.Fatalf("Recv after Close: %v, want ErrClosed", err)
	}
}

// testRingExchange runs the collective engine's neighbor pattern — every
// rank posts to its successor, then receives from its predecessor — the
// shape whose all-send cycle deadlocks on an unbuffered fabric.
func testRingExchange(t *testing.T, factory Factory, n, steps int) {
	tr := factory(t, n)
	defer tr.Close()
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			defer wg.Done()
			ep := tr.Endpoint(rank)
			next := (rank + 1) % n
			prev := (rank - 1 + n) % n
			for s := 0; s < steps; s++ {
				if err := ep.Send(next, transport.Packet{Data: []byte{byte(s)}, Wire: 1}); err != nil {
					t.Errorf("rank %d step %d send: %v", rank, s, err)
					return
				}
				p, err := ep.Recv(prev)
				if err != nil {
					t.Errorf("rank %d step %d recv: %v", rank, s, err)
					return
				}
				if p.Data[0] != byte(s) {
					t.Errorf("rank %d step %d: got %d", rank, s, p.Data[0])
					return
				}
			}
		}(r)
	}
	waitAll(t, &wg, 15*time.Second, fmt.Sprintf("ring M=%d", n))
}
