// Package marsit is the public API of the Marsit reproduction — a
// learning synchronization framework that performs multi-hop all-reduce
// (ring or 2D-torus) with exactly one bit per gradient element
// ("Sign Bit is Enough", DAC 2022).
//
// The facade re-exports the pieces a downstream user composes:
//
//	sim  := marsit.NewCluster(8)                 // simulated workers
//	sync := marsit.MustNew(marsit.Config{        // the framework
//	    Workers: 8, Dim: d, K: 100, GlobalLR: 0.005,
//	})
//	gt := sync.Sync(sim, scaledGrads)            // one-bit all-reduce
//
// Training loops, baselines and the experiment harness live in
// internal/train and internal/experiments; the runnable entry points
// are cmd/marsit-bench and cmd/marsit-train, and the examples/ tree
// shows end-to-end usage.
package marsit

import (
	"marsit/internal/core"
	"marsit/internal/netsim"
	"marsit/internal/tensor"
	"marsit/internal/topology"
)

// Config parameterizes a Marsit instance. See core.Config for field
// semantics: Workers (M), Dim (D), K (full-precision period, 0 = never),
// GlobalLR (η_s), Torus (nil = ring), Seed.
type Config = core.Config

// Marsit executes Algorithm 1 of the paper: unbiased one-bit sign
// aggregation with global compensation and periodic full-precision
// synchronization.
type Marsit = core.Marsit

// Cluster is the simulated cluster (per-worker clocks, α–β link costs,
// phase breakdown and byte accounting).
type Cluster = netsim.Cluster

// CostModel holds the α–β simulation constants.
type CostModel = netsim.CostModel

// Vec is a flat float64 gradient/parameter vector.
type Vec = tensor.Vec

// New validates cfg and returns a fresh Marsit with zero compensation.
func New(cfg Config) (*Marsit, error) { return core.New(cfg) }

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Marsit { return core.MustNew(cfg) }

// NewCluster builds a simulated cluster of n workers with the default
// public-cloud cost model (50 µs latency, 10 Gbit/s links).
func NewCluster(n int) *Cluster {
	return netsim.NewCluster(n, netsim.DefaultCostModel())
}

// NewClusterWithModel builds a simulated cluster with a custom cost
// model.
func NewClusterWithModel(n int, m CostModel) *Cluster {
	return netsim.NewCluster(n, m)
}

// DefaultCostModel returns the default α–β constants.
func DefaultCostModel() CostModel { return netsim.DefaultCostModel() }

// NewTorus builds a rows×cols 2D-torus topology for TAR-mode Marsit.
func NewTorus(rows, cols int) *topology.Torus { return topology.NewTorus(rows, cols) }

// SquareTorus builds the most balanced torus for n workers.
func SquareTorus(n int) *topology.Torus { return topology.SquareTorus(n) }
