// Package marsit is the public API of the Marsit reproduction — a
// learning synchronization framework that performs multi-hop all-reduce
// (ring or 2D-torus) with exactly one bit per gradient element
// ("Sign Bit is Enough", DAC 2022).
//
// The facade re-exports the pieces a downstream user composes:
//
//	sim  := marsit.NewCluster(8)                 // simulated workers
//	sync := marsit.MustNew(marsit.Config{        // the framework
//	    Workers: 8, Dim: d, K: 100, GlobalLR: 0.005,
//	})
//	gt := sync.Sync(sim, scaledGrads)            // one-bit all-reduce
//
// Training loops, baselines and the experiment harness live in
// internal/train and internal/experiments; the runnable entry points
// are cmd/marsit-bench and cmd/marsit-train, and the examples/ tree
// shows end-to-end usage.
//
// # Execution engines
//
// Two engines execute the collectives:
//
//   - Sequential (the default): a single-threaded lock-step loop mutates
//     all workers' vectors over the netsim substrate. Deterministic
//     virtual time; the mode the paper figures use.
//   - Parallel (Config.Parallel, or marsit.NewEngine for direct
//     collective access): the concurrent execution engine of
//     internal/runtime runs one goroutine per worker, each owning its
//     shard and exchanging messages through a pluggable Transport
//     (internal/transport). Two fabric backends exist: the in-process
//     loopback (Config.Transport = TransportLoopback, the default) and
//     real TCP sockets (TransportTCP, backed by internal/transport/tcp
//     on the loopback interface). The collectives are written against
//     the Endpoint contract only — FIFO per rank pair, byte payloads, a
//     frame header of wire size and virtual clock — so both backends
//     produce bit-identical results; cmd/marsit-node stretches the same
//     TCP fabric across processes and machines.
//
// The parallel engine charges the same α–β costs as the sequential one
// (each packet carries the sender's virtual clock, reproducing netsim's
// cut-through arithmetic), so synchronization results, wire bytes and
// simulated clocks are bit-identical between engines for a fixed Seed —
// only wall-clock behaviour changes. A Parallel Marsit owns M worker
// goroutines; call Close when done:
//
//	sync := marsit.MustNew(marsit.Config{
//	    Workers: 8, Dim: d, K: 100, GlobalLR: 0.005, Parallel: true,
//	})
//	defer sync.Close()
package marsit

import (
	"marsit/internal/core"
	"marsit/internal/netsim"
	"marsit/internal/runtime"
	"marsit/internal/tensor"
	"marsit/internal/topology"
)

// Config parameterizes a Marsit instance. See core.Config for field
// semantics: Workers (M), Dim (D), K (full-precision period, 0 = never),
// GlobalLR (η_s), Torus (nil = ring), Seed.
type Config = core.Config

// Marsit executes Algorithm 1 of the paper: unbiased one-bit sign
// aggregation with global compensation and periodic full-precision
// synchronization.
type Marsit = core.Marsit

// Cluster is the simulated cluster (per-worker clocks, α–β link costs,
// phase breakdown and byte accounting).
type Cluster = netsim.Cluster

// CostModel holds the α–β simulation constants.
type CostModel = netsim.CostModel

// Vec is a flat float64 gradient/parameter vector.
type Vec = tensor.Vec

// Engine is the concurrent execution engine: one goroutine per worker,
// exchanging messages over a pluggable transport, exposing the ported
// collectives — full-precision RingAllReduce/TorusAllReduce, the
// one-bit Marsit paths, the compressed sign-sum transports
// (SignSumRing, SignSumTorus, OverflowRing, CascadingRing, with
// optional Elias coding on the wire), and the parameter-server family
// (PSAllReduce, SignMajorityPS, SSDMPS, ScaledSignPS) served by a hub
// actor hosted on rank 0 — plus ParallelFor for shard-local work. Every
// ported collective reproduces the sequential engine's results, wire
// bytes and α–β virtual clocks bit for bit over both fabric backends
// (the cross-engine matrix in internal/runtime/equivtest enforces
// this).
type Engine = runtime.Engine

// NewEngine starts a concurrent engine of workers goroutines connected
// by an in-process loopback transport. Close it when done.
func NewEngine(workers int) *Engine { return runtime.New(workers) }

// Transport selects the parallel engine's message fabric backend.
type Transport = core.Transport

// The fabric backends of the parallel engine.
const (
	// TransportLoopback is the in-process channel fabric (the default).
	TransportLoopback = core.TransportLoopback
	// TransportTCP exchanges every message over a real TCP socket on the
	// loopback interface; results and virtual-time accounting stay
	// bit-identical to loopback.
	TransportTCP = core.TransportTCP
)

// NewEngineTCP starts a concurrent engine whose ranks exchange messages
// over real TCP sockets on the loopback interface (one connection per
// rank pair). Close it when done; the sockets are released with it.
func NewEngineTCP(workers int) (*Engine, error) {
	return core.NewParallelEngine(workers, core.TransportTCP)
}

// New validates cfg and returns a fresh Marsit with zero compensation.
func New(cfg Config) (*Marsit, error) { return core.New(cfg) }

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Marsit { return core.MustNew(cfg) }

// NewCluster builds a simulated cluster of n workers with the default
// public-cloud cost model (50 µs latency, 10 Gbit/s links).
func NewCluster(n int) *Cluster {
	return netsim.NewCluster(n, netsim.DefaultCostModel())
}

// NewClusterWithModel builds a simulated cluster with a custom cost
// model.
func NewClusterWithModel(n int, m CostModel) *Cluster {
	return netsim.NewCluster(n, m)
}

// DefaultCostModel returns the default α–β constants.
func DefaultCostModel() CostModel { return netsim.DefaultCostModel() }

// NewTorus builds a rows×cols 2D-torus topology for TAR-mode Marsit.
func NewTorus(rows, cols int) *topology.Torus { return topology.NewTorus(rows, cols) }

// SquareTorus builds the most balanced torus for n workers.
func SquareTorus(n int) *topology.Torus { return topology.SquareTorus(n) }
