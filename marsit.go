// Package marsit is the public API of the Marsit reproduction — a
// learning synchronization framework that performs multi-hop all-reduce
// (ring or 2D-torus) with exactly one bit per gradient element
// ("Sign Bit is Enough", DAC 2022).
//
// # One call, every collective
//
// Every collective the repository implements — the one-bit Marsit
// schedules, full-precision RAR/TAR/PS, the sign-sum transports with
// bit-width expansion ± Elias coding, cascading SSDM, and the
// parameter-server family — registers once in a central registry and is
// invoked through one facade:
//
//	grads := ... // one gradient vector per worker
//	outs, err := marsit.Run("marsit", grads,
//	    marsit.WithGlobalLR(0.01),
//	    marsit.WithSeed(7),
//	)
//
// Options select the execution engine and fabric, the topology, and the
// schedule parameters:
//
//	marsit.Run("signsum", grads,
//	    marsit.WithEngine(marsit.EnginePar), // goroutine-per-worker engine
//	    marsit.WithTransport(marsit.TransportTCP),
//	    marsit.WithTorus(2, 4),
//	    marsit.WithElias(),
//	    marsit.WithSeed(3),
//	)
//
// marsit.Collectives returns the registered schedules with their
// topology, capability and wire-model metadata — the same listing the
// CLIs print and validate against. Every registered collective is
// covered by a generated cross-engine equivalence matrix
// (internal/runtime/equivtest): sequential and per-rank legs must agree
// bit for bit on results, wire bytes and α–β virtual clocks over both
// fabric backends.
//
// # Execution engines
//
// Two engines execute the collectives:
//
//   - Sequential (the default): a single-threaded lock-step loop mutates
//     all workers' vectors over the netsim substrate. Deterministic
//     virtual time; the mode the paper figures use.
//   - Parallel (EnginePar, Config.Parallel, or marsit.NewEngine for
//     direct engine access): the concurrent execution engine of
//     internal/runtime runs one goroutine per worker, each owning its
//     shard and exchanging messages through a pluggable Transport
//     (internal/transport). Four fabric backends exist: the in-process
//     loopback (the default), real TCP sockets (TransportTCP),
//     cross-process shared-memory rings (TransportSHM) and the hybrid
//     per-link split — shared memory intra-host, TCP inter-host
//     (TransportHybrid); cmd/marsit-node stretches the wire fabrics
//     across processes and machines.
//
// The parallel engine charges the same α–β costs as the sequential one
// (each packet carries the sender's virtual clock, reproducing netsim's
// cut-through arithmetic), so synchronization results, wire bytes and
// simulated clocks are bit-identical between engines for a fixed seed —
// only wall-clock behaviour changes.
//
// # Stateful training
//
// Run executes stateless one-shot rounds. For the paper's full
// Algorithm 1 across rounds (global compensation, the K-periodic
// full-precision schedule), use the stateful Marsit type:
//
//	sync := marsit.MustNew(marsit.Config{
//	    Workers: 8, Dim: d, K: 100, GlobalLR: 0.005,
//	})
//	gt := sync.Sync(cluster, scaledGrads)
//
// Training loops, baselines and the experiment harness live in
// internal/train and internal/experiments; the runnable entry points
// are cmd/marsit-bench, cmd/marsit-train and cmd/marsit-node, and the
// examples/ tree shows end-to-end usage.
package marsit

import (
	"fmt"

	"marsit/internal/collective/registry"
	"marsit/internal/core"
	"marsit/internal/netsim"
	"marsit/internal/runtime"
	"marsit/internal/tensor"
	"marsit/internal/topology"
)

// Config parameterizes a Marsit instance. See core.Config for field
// semantics: Workers (M), Dim (D), K (full-precision period, 0 = never),
// GlobalLR (η_s), Torus (nil = ring), Seed.
type Config = core.Config

// Marsit executes Algorithm 1 of the paper: unbiased one-bit sign
// aggregation with global compensation and periodic full-precision
// synchronization.
type Marsit = core.Marsit

// Cluster is the simulated cluster (per-worker clocks, α–β link costs,
// phase breakdown and byte accounting).
type Cluster = netsim.Cluster

// CostModel holds the α–β simulation constants.
type CostModel = netsim.CostModel

// Vec is a flat float64 gradient/parameter vector.
type Vec = tensor.Vec

// Engine is the concurrent execution engine: one goroutine per worker,
// exchanging messages over a pluggable transport. Engine.Run executes
// any registered collective (resolve a descriptor through
// internal/collective/registry); ParallelFor runs shard-local work.
// Every collective reproduces the sequential engine's results, wire
// bytes and α–β virtual clocks bit for bit over both fabric backends
// (the generated matrix in internal/runtime/equivtest enforces this).
type Engine = runtime.Engine

// NewEngine starts a concurrent engine of workers goroutines connected
// by an in-process loopback transport. Close it when done.
func NewEngine(workers int) *Engine { return runtime.New(workers) }

// Transport selects the parallel engine's message fabric backend.
type Transport = core.Transport

// The fabric backends of the parallel engine.
const (
	// TransportLoopback is the in-process channel fabric (the default).
	TransportLoopback = core.TransportLoopback
	// TransportTCP exchanges every message over a real TCP socket on the
	// loopback interface; results and virtual-time accounting stay
	// bit-identical to loopback.
	TransportTCP = core.TransportTCP
	// TransportSHM exchanges every message over a cross-process
	// shared-memory ring (mmap'd SPSC frame rings, no syscalls in
	// steady state); bit-identical to loopback, co-located ranks only.
	TransportSHM = core.TransportSHM
	// TransportHybrid routes each link by a host map: shared-memory
	// rings intra-host, TCP sockets inter-host. In-process the ranks
	// split into a lower-half and an upper-half host.
	TransportHybrid = core.TransportHybrid
)

// NewEngineTCP starts a concurrent engine whose ranks exchange messages
// over real TCP sockets on the loopback interface (one connection per
// rank pair). Close it when done; the sockets are released with it.
func NewEngineTCP(workers int) (*Engine, error) {
	return core.NewParallelEngine(workers, core.TransportTCP)
}

// NewEngineSHM starts a concurrent engine whose ranks exchange messages
// over cross-process shared-memory rings rendezvoused in a temporary
// directory. Close it when done; the rings are released with it.
func NewEngineSHM(workers int) (*Engine, error) {
	return core.NewParallelEngine(workers, core.TransportSHM)
}

// EngineKind selects the execution engine Run uses.
type EngineKind string

// The execution engines.
const (
	// EngineSeq is the single-threaded lock-step engine (the default;
	// the mode the paper figures use).
	EngineSeq EngineKind = "seq"
	// EnginePar is the concurrent engine: one goroutine per worker over
	// a pluggable fabric, bit-identical to EngineSeq.
	EnginePar EngineKind = "par"
)

// RunOption configures one Run invocation.
type RunOption func(*runConfig)

type runConfig struct {
	engine               EngineKind
	transport            Transport
	torusRows, torusCols int
	elias                bool
	seed                 uint64
	k                    int
	globalLR             float64
	chunks               int
	powerRank            int
	cluster              *Cluster
}

// WithEngine selects the execution engine (EngineSeq or EnginePar).
func WithEngine(e EngineKind) RunOption { return func(rc *runConfig) { rc.engine = e } }

// WithTransport selects the parallel engine's fabric backend
// (TransportLoopback, TransportTCP, TransportSHM or TransportHybrid);
// it implies EnginePar semantics
// only when WithEngine(EnginePar) is also given.
func WithTransport(t Transport) RunOption { return func(rc *runConfig) { rc.transport = t } }

// WithTorus lays the workers out as a rows×cols 2D torus (collectives
// with torus support).
func WithTorus(rows, cols int) RunOption {
	return func(rc *runConfig) { rc.torusRows, rc.torusCols = rows, cols }
}

// WithElias enables Elias-gamma compaction of the wire payloads
// (Elias-capable collectives).
func WithElias() RunOption { return func(rc *runConfig) { rc.elias = true } }

// WithSeed sets the seed deriving every per-rank stream the collective
// needs (stochastic compression, one-bit merge transients).
func WithSeed(s uint64) RunOption { return func(rc *runConfig) { rc.seed = s } }

// WithK sets the Marsit full-precision period (0 = one-bit forever).
func WithK(k int) RunOption { return func(rc *runConfig) { rc.k = k } }

// WithGlobalLR sets the Marsit global step η_s (default 0.01 for
// collectives that need it).
func WithGlobalLR(lr float64) RunOption { return func(rc *runConfig) { rc.globalLR = lr } }

// WithChunks splits every ring-hop payload into n pipelined frames on
// the parallel engine (chunk-capable collectives), overlapping one
// hop's merge with the next chunk's transfer. Results, wire bytes and
// simulated clocks are unaffected — the equivalence matrix pins them
// bit-identical for every chunk count — only wall-clock behaviour
// changes; the sequential engine ignores it.
func WithChunks(n int) RunOption { return func(rc *runConfig) { rc.chunks = n } }

// WithPowerRank sets the low-rank approximation rank of the PowerSGD
// collective (0 = the default rank 2). All workers share it.
func WithPowerRank(r int) RunOption { return func(rc *runConfig) { rc.powerRank = r } }

// WithCluster charges the run to an existing simulated cluster instead
// of a fresh default one — inspect it afterwards for clocks, wire bytes
// and phase breakdowns.
func WithCluster(c *Cluster) RunOption { return func(rc *runConfig) { rc.cluster = c } }

// Run executes one round of the named collective over the workers'
// gradient vectors (one per worker; collectives may mutate them in
// place) and returns the per-worker synchronized outputs. The name is a
// registry name — see Collectives for discovery. Scheduling state does
// not persist across calls; use the Marsit type for stateful training.
func Run(name string, grads []Vec, opts ...RunOption) ([]Vec, error) {
	desc, err := registry.Get(name)
	if err != nil {
		return nil, err
	}
	if len(grads) == 0 {
		return nil, fmt.Errorf("marsit: no gradient vectors")
	}
	rc := runConfig{engine: EngineSeq, globalLR: 0.01}
	for _, opt := range opts {
		opt(&rc)
	}
	n, d := len(grads), len(grads[0])
	for w, g := range grads {
		if len(g) != d {
			return nil, fmt.Errorf("marsit: worker %d gradient dim %d, want %d", w, len(g), d)
		}
	}
	var tor *topology.Torus
	if rc.torusRows != 0 || rc.torusCols != 0 {
		if rc.torusRows < 1 || rc.torusCols < 1 {
			return nil, fmt.Errorf("marsit: bad torus %dx%d", rc.torusRows, rc.torusCols)
		}
		tor = topology.NewTorus(rc.torusRows, rc.torusCols)
	}
	o := &registry.Opts{
		Workers: n, Dim: d, Torus: tor, Elias: rc.elias,
		Seed: rc.seed, K: rc.k, GlobalLR: rc.globalLR, Chunks: rc.chunks,
		PowerRank: rc.powerRank,
	}
	c := rc.cluster
	if c == nil {
		c = NewCluster(n)
	} else if c.Size() != n {
		return nil, fmt.Errorf("marsit: cluster of %d workers for %d gradient vectors", c.Size(), n)
	}
	switch rc.engine {
	case EngineSeq, "":
		run, err := desc.Seq(o)
		if err != nil {
			return nil, err
		}
		return run(c, grads), nil
	case EnginePar:
		eng, err := core.NewParallelEngine(n, rc.transport)
		if err != nil {
			return nil, err
		}
		defer eng.Close()
		return eng.Run(c, desc, o, grads)
	default:
		return nil, fmt.Errorf("marsit: unknown engine %q", rc.engine)
	}
}

// CollectiveInfo describes one registered collective.
type CollectiveInfo struct {
	// Name is the registry key (the value Run and the CLIs accept).
	Name string
	// Summary is the one-line description.
	Summary string
	// Topology is the base interconnect: "ring", "torus" or "ps".
	Topology string
	// Wire describes the simulated wire model.
	Wire string
	// Capability flags: Elias coding, optional torus layout, PS hub
	// family, K-periodic schedule (needs a global step).
	SupportsElias, SupportsTorus, PSFamily, NeedsK bool
}

// Collectives lists every registered collective in name order — the
// discovery half of the facade (the CLIs' -collective flags and help
// text validate against the same registry).
func Collectives() []CollectiveInfo {
	all := registry.All()
	out := make([]CollectiveInfo, 0, len(all))
	for _, d := range all {
		out = append(out, CollectiveInfo{
			Name:          d.Name,
			Summary:       d.Summary,
			Topology:      string(d.Topology),
			Wire:          d.Wire,
			SupportsElias: d.Caps.Elias,
			SupportsTorus: d.Caps.Torus || d.Topology == registry.Torus,
			PSFamily:      d.Caps.PSFamily,
			NeedsK:        d.Caps.NeedsK,
		})
	}
	return out
}

// New validates cfg and returns a fresh Marsit with zero compensation.
func New(cfg Config) (*Marsit, error) { return core.New(cfg) }

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Marsit { return core.MustNew(cfg) }

// NewCluster builds a simulated cluster of n workers with the default
// public-cloud cost model (50 µs latency, 10 Gbit/s links).
func NewCluster(n int) *Cluster {
	return netsim.NewCluster(n, netsim.DefaultCostModel())
}

// NewClusterWithModel builds a simulated cluster with a custom cost
// model.
func NewClusterWithModel(n int, m CostModel) *Cluster {
	return netsim.NewCluster(n, m)
}

// DefaultCostModel returns the default α–β constants.
func DefaultCostModel() CostModel { return netsim.DefaultCostModel() }

// NewTorus builds a rows×cols 2D-torus topology for TAR-mode Marsit.
func NewTorus(rows, cols int) *topology.Torus { return topology.NewTorus(rows, cols) }

// SquareTorus builds the most balanced torus for n workers.
func SquareTorus(n int) *topology.Torus { return topology.SquareTorus(n) }
