package marsit_test

import (
	"strings"
	"testing"

	"marsit"
	"marsit/internal/rng"
)

func facadeGrads(seed uint64, n, d int) []marsit.Vec {
	out := make([]marsit.Vec, n)
	for w := range out {
		r := rng.NewStream(seed, uint64(w))
		out[w] = r.NormVec(make(marsit.Vec, d), 0, 1)
	}
	return out
}

// TestFacadeRejectsChunksOnUnchunkedCollective: WithChunks on a
// collective whose per-rank leg has no chunk-pipelined path must fail
// fast through the facade, naming the collective and its capability
// set — on both engines, since the same Prepare guards both legs.
func TestFacadeRejectsChunksOnUnchunkedCollective(t *testing.T) {
	for _, engine := range []marsit.EngineKind{marsit.EngineSeq, marsit.EnginePar} {
		_, err := marsit.Run("gossip", facadeGrads(3, 4, 8),
			marsit.WithEngine(engine), marsit.WithChunks(3))
		if err == nil {
			t.Fatalf("engine %s accepted chunked gossip", engine)
		}
		for _, want := range []string{"gossip", "chunk-pipelined", "caps:"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("engine %s error %q does not mention %q", engine, err, want)
			}
		}
	}
}

// TestFacadeNewCollectives smoke-runs every newly registered scenario
// through the public facade on both engines and checks cross-engine
// bit-equality (the deep equivalence matrix lives in
// internal/runtime/equivtest; this pins the facade wiring).
func TestFacadeNewCollectives(t *testing.T) {
	const n, d = 4, 33
	cases := []struct {
		name string
		opts []marsit.RunOption
	}{
		{"gossip", nil},
		{"tree", nil},
		{"onebit-tree", nil},
		{"powersgd", []marsit.RunOption{marsit.WithPowerRank(3)}},
		{"hier", []marsit.RunOption{marsit.WithTorus(2, 2)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seqOut, err := marsit.Run(tc.name, facadeGrads(7, n, d),
				append([]marsit.RunOption{marsit.WithSeed(7)}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			parOut, err := marsit.Run(tc.name, facadeGrads(7, n, d),
				append([]marsit.RunOption{marsit.WithSeed(7), marsit.WithEngine(marsit.EnginePar)}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			if len(seqOut) != n || len(parOut) != n {
				t.Fatalf("outputs %d/%d, want %d", len(seqOut), len(parOut), n)
			}
			for w := 0; w < n; w++ {
				for i := 0; i < d; i++ {
					if seqOut[w][i] != parOut[w][i] {
						t.Fatalf("worker %d coordinate %d: seq %v != par %v",
							w, i, seqOut[w][i], parOut[w][i])
					}
				}
			}
		})
	}
}
